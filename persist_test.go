package layeredsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"layeredsg/internal/persist"
)

// The persistence battery: dump/load round trips, topology re-derivation,
// snapshot isolation under concurrent writers, Close-during-dump lifecycle,
// fail-closed fault injection, WAL recovery (replay, torn tail, lineage
// skew), and the race-persist torture run behind `make race-persist`.

func persistMachine(t testing.TB, sockets, coresPerSocket, threads int) *Machine {
	t.Helper()
	topo, err := NewTopology(sockets, coresPerSocket, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Pin(topo, threads)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func persistConfig(machine *Machine) Config {
	return Config{Machine: machine, Kind: LazyLayeredSG, Seed: 1}
}

// fillStore batch-inserts keys [0, n) with value k*3 and returns the model.
func fillStore(t testing.TB, st *Store[int64, int64], n int) map[int64]int64 {
	t.Helper()
	model := make(map[int64]int64, n)
	const batch = 4096
	keys := make([]int64, 0, batch)
	vals := make([]int64, 0, batch)
	flush := func() {
		if len(keys) == 0 {
			return
		}
		if _, err := st.InsertBatch(keys, vals); err != nil {
			t.Fatal(err)
		}
		keys, vals = keys[:0], vals[:0]
	}
	for i := 0; i < n; i++ {
		k := int64(i)
		keys = append(keys, k)
		vals = append(vals, k*3)
		model[k] = k * 3
		if len(keys) == batch {
			flush()
		}
	}
	flush()
	return model
}

// checkStoreModel verifies a quiescent store holds exactly model and its
// shared structure validates.
func checkStoreModel(t *testing.T, st *Store[int64, int64], model map[int64]int64) {
	t.Helper()
	m := st.Map()
	if got, want := m.Len(), len(model); got != want {
		t.Fatalf("Len() = %d, model has %d keys", got, want)
	}
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := m.Keys()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	for _, k := range want[:min(len(want), 64)] {
		if v, ok := st.Get(k); !ok || v != model[k] {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, model[k])
		}
	}
	if err := m.SharedStructure().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDumpLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dumpTracer := NewTracer(TracerConfig{Name: "persist-dump"})
	defer dumpTracer.Close()
	cfg := persistConfig(persistMachine(t, 2, 2, 4))
	cfg.Tracer = dumpTracer
	st, err := NewStore[int64, int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := fillStore(t, st, 20000)
	for k := int64(0); k < 20000; k += 7 {
		st.Remove(k)
		delete(model, k)
	}
	ds, err := st.StoreToDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Records != uint64(len(model)) {
		t.Fatalf("dumped %d records, model has %d", ds.Records, len(model))
	}
	st.Close()
	if p := dumpTracer.Snapshot().Persist; p == nil || p.DumpRecords != uint64(len(model)) || p.DumpBytes != ds.Bytes {
		t.Fatalf("dump tracer persist section %+v, want %d records / %d bytes", p, len(model), ds.Bytes)
	}

	loadTracer := NewTracer(TracerConfig{Name: "persist-load"})
	defer loadTracer.Close()
	lcfg := persistConfig(persistMachine(t, 1, 2, 2))
	lcfg.Tracer = loadTracer
	st2, ls, err := LoadFromDisk[int64, int64](dir, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if ls.Records != uint64(len(model)) || ls.BaseSeq != ds.BaseSeq {
		t.Fatalf("load stats %+v, want %d records at seq %d", ls, len(model), ds.BaseSeq)
	}
	checkStoreModel(t, st2, model)
	if p := loadTracer.Snapshot().Persist; p == nil || p.LoadRecords != uint64(len(model)) {
		t.Fatalf("load tracer persist section %+v, want %d records", p, len(model))
	}
	// The loaded store is fully live: mutations and snapshots work.
	if !st2.Insert(1<<40, 1) || st2.Insert(1<<40, 1) {
		t.Fatal("loaded store does not take mutations")
	}
	snap, err := st2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
}

// TestLoadTopologyRederivation dumps under a 4-socket machine and loads under
// 1- and 2-socket machines: the dump carries no layout, so membership
// vectors, arena placement, and the hash index must all be re-derived for the
// load machine — verified by structural validation plus cross-stripe reads
// from every stripe of the load machine.
func TestLoadTopologyRederivation(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore[int64, int64](persistConfig(persistMachine(t, 4, 2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	model := fillStore(t, st, 10000)
	ds, err := st.StoreToDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Shards != 4 {
		t.Fatalf("4-socket inline dump wrote %d shards, want one per socket", ds.Shards)
	}
	st.Close()

	for _, shape := range []struct{ sockets, cores, threads int }{
		{1, 2, 2},
		{2, 2, 4},
	} {
		t.Run(fmt.Sprintf("%d-socket", shape.sockets), func(t *testing.T) {
			st2, ls, err := LoadFromDisk[int64, int64](dir, persistConfig(persistMachine(t, shape.sockets, shape.cores, shape.threads)))
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if ls.Source.Sockets != 4 || ls.Source.Threads != 8 {
				t.Fatalf("recorded source topology %+v, want the 4-socket dump machine", ls.Source)
			}
			if got := st2.Map().Threads(); got != shape.threads {
				t.Fatalf("loaded store has %d stripes, want the load machine's %d", got, shape.threads)
			}
			// Cross-stripe point reads from every stripe: each leased handle
			// resolves keys its stripe never inserted.
			for stripe := 0; stripe < shape.threads; stripe++ {
				st2.Do(func(h *Handle[int64, int64]) {
					for _, k := range []int64{0, 1234, 9999} {
						if v, ok := h.Get(k); !ok || v != model[k] {
							t.Fatalf("Get(%d) = (%d, %v) on load machine", k, v, ok)
						}
					}
				})
			}
			checkStoreModel(t, st2, model)
		})
	}
}

// TestDumpSnapshotIsolation churns concurrent writers for the whole duration
// of a StoreToDisk: the dump must capture exactly its snapshot — every base
// key, no torn state — while the writers proceed. The loaded result must hold
// all base keys and only keys from the known universe.
func TestDumpSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore[int64, int64](persistConfig(persistMachine(t, 2, 2, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := fillStore(t, st, 8000)

	const churnLo, churnHi = 100000, 101000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := churnLo + int64((i*7+w*331)%(churnHi-churnLo))
				if i%2 == 0 {
					st.Insert(k, k)
				} else {
					st.Remove(k)
				}
			}
		}(w)
	}
	ds, err := st.StoreToDisk(dir)
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Records < uint64(len(base)) {
		t.Fatalf("dump captured %d records, fewer than the %d stable base keys", ds.Records, len(base))
	}

	st2, _, err := LoadFromDisk[int64, int64](dir, persistConfig(persistMachine(t, 1, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for k, v := range base {
		if got, ok := st2.Get(k); !ok || got != v {
			t.Fatalf("base key %d = (%d, %v) after load, want (%d, true)", k, got, ok, v)
		}
	}
	for _, k := range st2.Map().Keys() {
		if _, ok := base[k]; !ok && (k < churnLo || k >= churnHi) {
			t.Fatalf("loaded store holds key %d from outside the written universe", k)
		}
	}
	if err := st2.Map().SharedStructure().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringDump: Close concurrent with an in-flight StoreToDisk blocks
// on the dump's snapshot ticket — the documented "dump blocks Close"
// behavior — and the dump completes loadably.
func TestCloseDuringDump(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore[int64, int64](persistConfig(persistMachine(t, 2, 2, 4)))
	if err != nil {
		t.Fatal(err)
	}
	n := len(fillStore(t, st, 120000))

	type outcome struct {
		stats DumpStats
		err   error
	}
	done := make(chan outcome, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		stats, err := st.StoreToDisk(dir)
		done <- outcome{stats, err}
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the dump acquire its snapshot
	st.Close()
	out := <-done
	if out.err != nil {
		t.Fatalf("dump concurrent with Close: %v", out.err)
	}
	if out.stats.Records != uint64(n) {
		t.Fatalf("dump wrote %d records, want %d", out.stats.Records, n)
	}
	st2, ls, err := LoadFromDisk[int64, int64](dir, persistConfig(persistMachine(t, 1, 2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if ls.Records != uint64(n) {
		t.Fatalf("loaded %d records, want %d", ls.Records, n)
	}
	st2.Close()
}

func TestDumpRequiresSnapshots(t *testing.T) {
	cfg := persistConfig(persistMachine(t, 1, 2, 2))
	cfg.Reclaim = ReclaimOff
	st, err := NewStore[int64, int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.StoreToDisk(t.TempDir()); err == nil {
		t.Fatal("StoreToDisk on a snapshot-less store must fail")
	}
}

// TestLoadFaultsFailClosed corrupts a valid dump four ways; every load must
// return the matching typed error and a nil store.
func TestLoadFaultsFailClosed(t *testing.T) {
	makeDump := func(t *testing.T) string {
		dir := t.TempDir()
		st, err := NewStore[int64, int64](persistConfig(persistMachine(t, 2, 2, 4)))
		if err != nil {
			t.Fatal(err)
		}
		fillStore(t, st, 5000)
		if _, err := st.StoreToDisk(dir); err != nil {
			t.Fatal(err)
		}
		st.Close()
		return dir
	}
	// Batch dealing may leave a shard empty; corruption targets need records.
	nonEmptyShard := func(t *testing.T, dir string) string {
		for i := 0; ; i++ {
			p := filepath.Join(dir, persist.ShardFileName(i))
			fi, err := os.Stat(p)
			if err != nil {
				t.Fatalf("no non-empty shard in %s", dir)
			}
			if fi.Size() > 100 {
				return p
			}
		}
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    error
	}{
		{"truncated", func(t *testing.T, dir string) {
			p := nonEmptyShard(t, dir)
			fi, _ := os.Stat(p)
			if err := os.Truncate(p, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}, ErrPersistTruncated},
		{"bitflip", func(t *testing.T, dir string) {
			p := nonEmptyShard(t, dir)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrPersistChecksum},
		{"missing-shard", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, persist.ShardFileName(0))); err != nil {
				t.Fatal(err)
			}
		}, ErrPersistMissingShard},
		{"version-skew", func(t *testing.T, dir string) {
			p := filepath.Join(dir, persist.ShardFileName(0))
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint32(data[8:], 99)
			binary.LittleEndian.PutUint32(data[64:], crc32.Checksum(data[:64], crc32.MakeTable(crc32.Castagnoli)))
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, ErrPersistVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := makeDump(t)
			tc.corrupt(t, dir)
			st, _, err := LoadFromDisk[int64, int64](dir, persistConfig(persistMachine(t, 1, 2, 2)))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if st != nil {
				t.Fatal("fault returned a non-nil store")
			}
		})
	}
	t.Run("type-mismatch", func(t *testing.T) {
		dir := makeDump(t)
		st, _, err := LoadFromDisk[int64, string](dir, persistConfig(persistMachine(t, 1, 2, 2)))
		if !errors.Is(err, ErrPersistTypeMismatch) || st != nil {
			t.Fatalf("got %v (store %v), want ErrPersistTypeMismatch and nil", err, st)
		}
	})
}

// TestWALRecovery is the end-to-end crash-recovery path: journal through a
// dump, mutate past it, recover from dump+WAL, keep journaling in the adopted
// sequence space, and recover again.
func TestWALRecovery(t *testing.T) {
	dumpDir, walDir := t.TempDir(), t.TempDir()
	cfg := persistConfig(persistMachine(t, 2, 2, 4))
	cfg.WAL = walDir
	st, err := NewStore[int64, int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := fillStore(t, st, 3000)
	if _, err := st.StoreToDisk(dumpDir); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations: only the WAL holds these.
	for k := int64(50000); k < 50200; k++ {
		st.Insert(k, k*3)
		model[k] = k * 3
	}
	for k := int64(0); k < 100; k++ {
		st.Remove(k)
		delete(model, k)
	}
	st.Close()

	// A fresh store must refuse the leftover log.
	if _, err := NewStore[int64, int64](cfg); !errors.Is(err, ErrPersistWALExists) {
		t.Fatalf("fresh store over existing WAL: %v, want ErrPersistWALExists", err)
	}

	lcfg := persistConfig(persistMachine(t, 1, 2, 2))
	lcfg.WAL = walDir
	st2, ls, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ls.WALReplayed != 300 {
		t.Fatalf("replayed %d WAL records, want 300 (200 inserts + 100 removes)", ls.WALReplayed)
	}
	checkStoreModel(t, st2, model)

	// The recovered store journals into the same log and sequence space.
	for k := int64(60000); k < 60050; k++ {
		st2.Insert(k, k*3)
		model[k] = k * 3
	}
	st2.Close()
	st3, ls3, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ls3.WALReplayed != 350 {
		t.Fatalf("second recovery replayed %d records, want 350", ls3.WALReplayed)
	}
	checkStoreModel(t, st3, model)

	// A dump prunes the log: recovery from the new dump replays nothing.
	dumpDir2 := t.TempDir()
	if _, err := st3.StoreToDisk(dumpDir2); err != nil {
		t.Fatal(err)
	}
	st3.Close()
	st4, ls4, err := LoadFromDisk[int64, int64](dumpDir2, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ls4.WALReplayed != 0 {
		t.Fatalf("post-dump recovery replayed %d records, want 0 (log pruned)", ls4.WALReplayed)
	}
	checkStoreModel(t, st4, model)
	st4.Close()
}

// TestWALTornTailRecovery: a crash mid-append leaves a partial record; the
// load must truncate it away and succeed.
func TestWALTornTailRecovery(t *testing.T) {
	dumpDir, walDir := t.TempDir(), t.TempDir()
	cfg := persistConfig(persistMachine(t, 2, 2, 4))
	cfg.WAL = walDir
	st, err := NewStore[int64, int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := fillStore(t, st, 1000)
	if _, err := st.StoreToDisk(dumpDir); err != nil {
		t.Fatal(err)
	}
	st.Insert(90001, 1)
	model[90001] = 1
	st.Close()

	walPath := filepath.Join(walDir, persist.WALFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 77, 3}) // a torn insert record
	f.Close()

	lcfg := persistConfig(persistMachine(t, 1, 2, 2))
	lcfg.WAL = walDir
	st2, ls, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if err != nil {
		t.Fatalf("torn WAL tail must recover: %v", err)
	}
	defer st2.Close()
	if ls.WALDiscardedBytes != 3 || ls.WALReplayed != 1 {
		t.Fatalf("recovery stats %+v, want 3 discarded bytes and 1 replayed record", ls)
	}
	checkStoreModel(t, st2, model)
}

// TestWALLineageMismatch: a log journaling a different store's sequence space
// must be rejected, not replayed.
func TestWALLineageMismatch(t *testing.T) {
	dumpDir, walDirA, walDirB := t.TempDir(), t.TempDir(), t.TempDir()
	cfgA := persistConfig(persistMachine(t, 2, 2, 4))
	cfgA.WAL = walDirA
	stA, err := NewStore[int64, int64](cfgA)
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, stA, 500)
	if _, err := stA.StoreToDisk(dumpDir); err != nil {
		t.Fatal(err)
	}
	stA.Close()

	cfgB := persistConfig(persistMachine(t, 2, 2, 4))
	cfgB.WAL = walDirB
	stB, err := NewStore[int64, int64](cfgB)
	if err != nil {
		t.Fatal(err)
	}
	stB.Insert(1, 1)
	stB.Close()

	lcfg := persistConfig(persistMachine(t, 1, 2, 2))
	lcfg.WAL = walDirB // B's log against A's dump
	st, _, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if !errors.Is(err, ErrPersistWALMismatch) || st != nil {
		t.Fatalf("got %v (store %v), want ErrPersistWALMismatch and nil", err, st)
	}
}

// TestWALMissingStartsFresh: loading with a WAL directory that has no log yet
// starts one — the dump alone defines the state, and journaling begins.
func TestWALMissingStartsFresh(t *testing.T) {
	dumpDir := t.TempDir()
	st, err := NewStore[int64, int64](persistConfig(persistMachine(t, 2, 2, 4)))
	if err != nil {
		t.Fatal(err)
	}
	model := fillStore(t, st, 500)
	if _, err := st.StoreToDisk(dumpDir); err != nil {
		t.Fatal(err)
	}
	st.Close()

	walDir := t.TempDir()
	lcfg := persistConfig(persistMachine(t, 1, 2, 2))
	lcfg.WAL = walDir
	st2, ls, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ls.WALReplayed != 0 {
		t.Fatalf("fresh log replayed %d records", ls.WALReplayed)
	}
	st2.Insert(7777, 7)
	model[7777] = 7
	st2.Close()
	// The fresh log extends the dump's sequence space: recovery replays it.
	st3, ls3, err := LoadFromDisk[int64, int64](dumpDir, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if ls3.WALReplayed != 1 {
		t.Fatalf("replayed %d records from the started log, want 1", ls3.WALReplayed)
	}
	checkStoreModel(t, st3, model)
}

// TestTorturePersist is the race-persist target: background maintenance,
// reclamation, and the hash index all on, writer and reader goroutines
// churning, while dumps run back to back and each completed dump is loaded
// and validated. Run under -race via `make race-persist`.
func TestTorturePersist(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run")
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	cfg := persistConfig(persistMachine(t, 2, 2, 4))
	cfg.Maintenance = MaintBackground
	st, err := NewStore[int64, int64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fillStore(t, st, 4000)

	const churnSpace = 2000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := int64(100000 + (i*13+w*719)%churnSpace)
				switch i % 3 {
				case 0:
					st.Insert(k, k)
				case 1:
					st.Remove(k)
				case 2:
					st.Get(k)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			st.Get(int64(i % 4000))
			st.RangeScan(int64(i%4000), int64(i%4000)+32, func(int64, int64) bool { return true })
		}
	}()

	deadline := time.Now().Add(2 * time.Second)
	dirs := []string{dirA, dirB}
	for i := 0; time.Now().Before(deadline); i++ {
		dir := dirs[i%2]
		ds, err := st.StoreToDisk(dir)
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		if ds.Records < uint64(len(base)) {
			t.Fatalf("dump %d captured %d records, fewer than the stable base %d", i, ds.Records, len(base))
		}
		st2, _, err := LoadFromDisk[int64, int64](dir, persistConfig(persistMachine(t, 1, 2, 2)))
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		for k, v := range base {
			if got, ok := st2.Get(k); !ok || got != v {
				st2.Close()
				t.Fatalf("load %d: base key %d = (%d, %v)", i, k, got, ok)
			}
		}
		if err := st2.Map().SharedStructure().Validate(); err != nil {
			st2.Close()
			t.Fatalf("load %d: %v", i, err)
		}
		st2.Close()
	}
	stop.Store(true)
	wg.Wait()
	st.Close()
}
