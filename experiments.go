package layeredsg

import (
	"layeredsg/internal/experiments"
	"layeredsg/internal/numa"
	"layeredsg/internal/sbench"
	"layeredsg/internal/stats"
)

// ExperimentBuilder adapts the algorithm registry to the experiments
// package, which regenerates every table and figure of the paper's
// evaluation (see internal/experiments and cmd/experiments).
func ExperimentBuilder() experiments.Builder {
	return func(name string, machine *numa.Machine, keySpace int64, recorder *stats.Recorder, seed int64) (sbench.Adapter, error) {
		return NewAdapter(name, machine, AdapterOptions{
			KeySpace: keySpace,
			Recorder: recorder,
			Seed:     seed,
		})
	}
}
