package layeredsg_test

import (
	"fmt"
	"time"

	"layeredsg"
)

// The basic lifecycle: describe a machine, pin threads, build a map, and
// operate through per-thread handles.
func Example() {
	topo, _ := layeredsg.NewTopology(2, 2, 2) // 2 sockets × 2 cores × 2 SMT
	machine, _ := layeredsg.Pin(topo, 4)
	m, _ := layeredsg.New[int64, string](layeredsg.Config{
		Machine: machine,
		Kind:    layeredsg.LazyLayeredSG,
	})

	h := m.Handle(0)
	fmt.Println(h.Insert(1, "one"))
	fmt.Println(h.Insert(1, "dup"))
	v, ok := h.Get(1)
	fmt.Println(v, ok)
	fmt.Println(h.Remove(1))
	fmt.Println(h.Contains(1))
	// Output:
	// true
	// false
	// one true
	// true
	// false
}

// Every variant from the paper's evaluation is one Kind away.
func ExampleConfig() {
	topo, _ := layeredsg.NewTopology(2, 2, 1)
	machine, _ := layeredsg.Pin(topo, 4)
	for _, kind := range []layeredsg.Kind{
		layeredsg.LayeredSG, layeredsg.LayeredSSG, layeredsg.LayeredLL,
	} {
		m, err := layeredsg.New[int64, int64](layeredsg.Config{Machine: machine, Kind: kind})
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Println(kind, "height", m.MaxLevel())
	}
	// Output:
	// layered_map_sg height 1
	// layered_map_ssg height 1
	// layered_map_ll height 0
}

// Ordered traversal gives weakly consistent range scans.
func ExampleHandle_Ascend() {
	topo, _ := layeredsg.NewTopology(1, 2, 1)
	machine, _ := layeredsg.Pin(topo, 2)
	m, _ := layeredsg.New[int64, string](layeredsg.Config{Machine: machine, Kind: layeredsg.LayeredSG})
	h := m.Handle(0)
	for _, k := range []int64{5, 1, 9, 3, 7} {
		h.Insert(k, fmt.Sprintf("v%d", k))
	}
	h.Ascend(3, func(k int64, v string) bool {
		fmt.Println(k, v)
		return k < 7
	})
	// Output:
	// 3 v3
	// 5 v5
	// 7 v7
}

// The registry builds every algorithm of the evaluation for benchmarking.
func ExampleNewAdapter() {
	topo, _ := layeredsg.NewTopology(2, 2, 1)
	machine, _ := layeredsg.Pin(topo, 4)
	a, err := layeredsg.NewAdapter("skiplist", machine, layeredsg.AdapterOptions{KeySpace: 1 << 10})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer a.Close()
	h := a.Handle(0)
	fmt.Println(h.Insert(7, 7))
	fmt.Println(h.Contains(7))
	// Output:
	// true
	// true
}

// A short Synchrobench-style trial.
func ExampleRunTrial() {
	topo, _ := layeredsg.NewTopology(2, 2, 1)
	machine, _ := layeredsg.Pin(topo, 4)
	a, _ := layeredsg.NewAdapter("lazy_layered_sg", machine, layeredsg.AdapterOptions{KeySpace: 1 << 8})
	defer a.Close()
	res, err := layeredsg.RunTrial(machine, a, layeredsg.Workload{
		KeySpace:        1 << 8,
		UpdateRatio:     0.5,
		Duration:        20 * time.Millisecond,
		PreloadFraction: 0.2,
		Seed:            1,
		YieldEvery:      1,
	})
	fmt.Println(err == nil, res.TotalOps > 0, res.Threads)
	// Output:
	// true true 4
}
