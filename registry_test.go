package layeredsg

import (
	"strings"
	"testing"
	"time"
)

// TestNewAdapterErrors covers the registry's error paths: unknown labels,
// nil machines, the KeySpace requirement of the non-layered skip lists, and
// ViaStore on algorithms without a Store facade.
func TestNewAdapterErrors(t *testing.T) {
	machine := testMachine(t, 4)
	cases := []struct {
		name    string
		algo    string
		machine *Machine
		opts    AdapterOptions
		wantErr string // substring of the error; "" means success
	}{
		{
			name:    "unknown algorithm",
			algo:    "no_such_algorithm",
			machine: machine,
			wantErr: `unknown algorithm "no_such_algorithm"`,
		},
		{
			name:    "nil machine",
			algo:    "lazy_layered_sg",
			machine: nil,
			wantErr: "machine is required",
		},
		{
			name:    "skiplist without KeySpace",
			algo:    "skiplist",
			machine: machine,
			wantErr: "requires AdapterOptions.KeySpace > 0",
		},
		{
			name:    "skiplist with negative KeySpace",
			algo:    "skiplist",
			machine: machine,
			opts:    AdapterOptions{KeySpace: -5},
			wantErr: "requires AdapterOptions.KeySpace > 0",
		},
		{
			name:    "lockedskiplist without KeySpace",
			algo:    "lockedskiplist",
			machine: machine,
			wantErr: "requires AdapterOptions.KeySpace > 0",
		},
		{
			name:    "skipgraph_nolayer without KeySpace is fine (height from threads)",
			algo:    "skipgraph_nolayer",
			machine: machine,
		},
		{
			name:    "layered without KeySpace is fine",
			algo:    "lazy_layered_sg",
			machine: machine,
		},
		{
			name:    "skiplist with KeySpace",
			algo:    "skiplist",
			machine: machine,
			opts:    AdapterOptions{KeySpace: 1 << 10},
		},
		{
			name:    "lockedskiplist with KeySpace",
			algo:    "lockedskiplist",
			machine: machine,
			opts:    AdapterOptions{KeySpace: 1 << 10},
		},
		{
			name:    "ViaStore on a layered variant",
			algo:    "lazy_layered_sg",
			machine: machine,
			opts:    AdapterOptions{ViaStore: true},
		},
		{
			name:    "ViaStore on skiplist",
			algo:    "skiplist",
			machine: machine,
			opts:    AdapterOptions{KeySpace: 1 << 10, ViaStore: true},
			wantErr: "ViaStore is only supported for layered variants",
		},
		{
			name:    "ViaStore on lockedskiplist",
			algo:    "lockedskiplist",
			machine: machine,
			opts:    AdapterOptions{KeySpace: 1 << 10, ViaStore: true},
			wantErr: "ViaStore is only supported for layered variants",
		},
		{
			name:    "ViaStore on a competitor",
			algo:    "nohotspot",
			machine: machine,
			opts:    AdapterOptions{ViaStore: true},
			wantErr: "ViaStore is only supported for layered variants",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewAdapter(tc.algo, tc.machine, tc.opts)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewAdapter(%q) = %v, want success", tc.algo, err)
				}
				a.Close()
				return
			}
			if err == nil {
				a.Close()
				t.Fatalf("NewAdapter(%q) succeeded, want error containing %q", tc.algo, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewAdapter(%q) error = %q, want substring %q", tc.algo, err, tc.wantErr)
			}
		})
	}
}

// TestViaStoreAdapter checks the store-backed adapter end to end: it is
// oversubscribable, a trial with goroutines ≫ threads runs, and a confined
// adapter rejects the same oversubscription.
func TestViaStoreAdapter(t *testing.T) {
	machine := testMachine(t, 4)
	w := Workload{
		KeySpace:        1 << 10,
		UpdateRatio:     0.5,
		Duration:        30 * time.Millisecond,
		PreloadFraction: 0.2,
		Seed:            42,
		YieldEvery:      1,
		Goroutines:      16, // 4× the pinned threads
	}

	a, err := NewAdapter("lazy_layered_sg", machine, AdapterOptions{ViaStore: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if got, want := a.Name(), "lazy_layered_sg+store"; got != want {
		t.Fatalf("adapter name = %q, want %q", got, want)
	}
	res, err := RunTrial(machine, a, w)
	if err != nil {
		t.Fatalf("oversubscribed store trial: %v", err)
	}
	if res.Goroutines != 16 || res.Threads != 4 {
		t.Fatalf("result goroutines/threads = %d/%d, want 16/4", res.Goroutines, res.Threads)
	}
	if res.TotalOps == 0 {
		t.Fatal("trial performed no operations")
	}

	raw, err := NewAdapter("lazy_layered_sg", machine, AdapterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := RunTrial(machine, raw, w); err == nil {
		t.Fatal("confined adapter accepted goroutines > threads")
	} else if !strings.Contains(err.Error(), "not oversubscribable") {
		t.Fatalf("unexpected oversubscription error: %v", err)
	}
}
