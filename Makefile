# Tier-1 verification plus the repo's standard hygiene passes.
#
#   make          — the full CI sequence (build, test, vet, race)
#   make race     — short-mode race pass over the confinement-sensitive
#                   packages: internal/core (handle migration contract),
#                   the root package (Store facade leasing), and
#                   internal/sbench (oversubscribed trials)
#   make race-maintain — race pass over the background-maintenance surface:
#                   internal/maintain plus the root scenarios that run
#                   helpers against inline searches (claim arbitration,
#                   Close-during-drain, scheduled linearizability)
#   make bench    — the Store-overhead benchmark pair (see EXPERIMENTS.md)
#   make fuzz-smoke — 30s of coverage-guided fuzzing per fuzz target (the
#                   go tool accepts one -fuzz pattern per run, hence one
#                   invocation each); seed-corpus replay is part of plain `test`

GO ?= go
FUZZTIME ?= 30s

.PHONY: ci build test vet race race-maintain bench fuzz-smoke fmt

ci: build test vet race race-maintain

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./internal/core ./internal/sbench .

race-maintain:
	$(GO) test -race ./internal/maintain
	$(GO) test -race -run 'Maint|TestCloseDuringDrain|TestStoreCloseLifecycle|TestHelperVsInline' .

bench:
	$(GO) test -run '^$$' -bench 'Store' -benchtime 3x .

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSkipGraphOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzStoreOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMaintainOps$$' -fuzztime $(FUZZTIME) .

fmt:
	gofmt -l .
