# Tier-1 verification plus the repo's standard hygiene passes.
#
#   make          — the full CI sequence (build, test, vet, race)
#   make race     — short-mode race pass over the confinement-sensitive
#                   packages: internal/core (handle migration contract),
#                   the root package (Store facade leasing), and
#                   internal/sbench (oversubscribed trials)
#   make race-maintain — race pass over the background-maintenance surface:
#                   internal/maintain plus the root scenarios that run
#                   helpers against inline searches (claim arbitration,
#                   Close-during-drain, scheduled linearizability)
#   make race-refs — race pass over the node-representation surface: the
#                   packed/cell torture scenarios and differential fuzz
#                   seed corpus, plus internal/atomicmark and internal/node
#   make race-reclaim — race pass over the reclamation/snapshot surface:
#                   internal/epoch plus the root snapshot, plateau,
#                   slot-recycle-ABA, and Close-blocks-on-snapshot
#                   scenarios, and the FuzzSnapshotOps seed corpus
#   make race-index — race pass over the shared hash index surface:
#                   internal/hindex plus the root cross-handle, parity,
#                   stale-generation, and index×reclaim torture scenarios,
#                   and the FuzzIndexOps seed corpus
#   make race-persist — race pass over the persistence surface:
#                   internal/persist plus the root dump/load scenarios that
#                   run writers against in-flight dumps (snapshot isolation,
#                   Close-during-dump, WAL recovery, the persist torture run)
#                   and the FuzzDumpLoad seed corpus
#   make race-wal — race pass over the WAL durability surface: the sync-policy
#                   and group-commit scenarios, the process-kill crash matrix,
#                   the FuzzWALSync seed corpus, and the root Barrier/Err
#                   scenarios driving concurrent acknowledgers
#   make bench    — the Store-overhead benchmark pair (see EXPERIMENTS.md)
#   make bench-reclaim — the reclamation benchmarks: slot-churn turnover
#                   and revival with reclamation on/off, snapshot acquire,
#                   and consistent-vs-weak RangeScan (see EXPERIMENTS.md)
#   make bench-alloc — the representation benchmarks with -benchmem and
#                   GODEBUG=gctrace=1, for allocs/op and GC-pause deltas
#                   (see EXPERIMENTS.md); gctrace logs go to stderr
#   make bench-json — the fixed sgbench scenario grid (index on/off across
#                   the paper's contention cells plus a hotspot-skew cell),
#                   written to BENCH.json for cross-PR diffing
#   make bench-persist — the persistence trial: fill PERSISTKEYS keys,
#                   StoreToDisk, LoadFromDisk round trip via sgbench,
#                   reporting keys/s and MB/s each way (see EXPERIMENTS.md)
#   make bench-wal — the WAL durability benchmarks: append and commit cost
#                   per sync policy (never/interval/every/group), plus an
#                   sgbench fill sweep with per-batch Barrier acknowledgment
#                   showing the group-commit batching counters (EXPERIMENTS.md)
#   make fuzz-smoke — 30s of coverage-guided fuzzing per fuzz target (the
#                   go tool accepts one -fuzz pattern per run, hence one
#                   invocation each); seed-corpus replay is part of plain `test`

GO ?= go
FUZZTIME ?= 30s
BENCHJSON ?= BENCH.json
PERSISTKEYS ?= 2000000
PERSISTDIR ?= /tmp/layeredsg-persist
WALKEYS ?= 500000

.PHONY: ci build test vet race race-maintain race-refs race-reclaim race-index race-persist race-wal bench bench-alloc bench-reclaim bench-json bench-persist bench-wal fuzz-smoke fmt

ci: build test vet race race-maintain race-refs race-reclaim race-index race-persist race-wal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./internal/core ./internal/sbench .

race-maintain:
	$(GO) test -race ./internal/maintain
	$(GO) test -race -run 'Maint|TestCloseDuringDrain|TestStoreCloseLifecycle|TestHelperVsInline' .

race-refs:
	$(GO) test -race ./internal/atomicmark ./internal/node
	$(GO) test -race -run 'TestTorturePackedRefs|FuzzRefRepresentations' .

race-reclaim:
	$(GO) test -race ./internal/epoch
	$(GO) test -race -run 'TestArenaRecycleABA' ./internal/node
	$(GO) test -race -run 'TestSnapshot|TestReclaimPlateau|TestInlineRetireReachesLimbo|TestStoreCloseBlocksOnSnapshot|FuzzSnapshotOps' .

race-index:
	$(GO) test -race ./internal/hindex
	$(GO) test -race -run 'TestIndex|TestTortureIndexReclaim|FuzzIndexOps' .

race-persist:
	$(GO) test -race ./internal/persist
	$(GO) test -race -run 'TestTorturePersist|TestDumpSnapshotIsolation|TestCloseDuringDump|TestWAL|TestStoreDumpLoadRoundTrip|FuzzDumpLoad' .

race-wal:
	$(GO) test -race -run 'TestWAL|TestSyncPolicy|FuzzWALSync' ./internal/persist
	$(GO) test -race -run 'TestStoreBarrier|TestStoreErr|TestStoreWALSync' .

bench:
	$(GO) test -run '^$$' -bench 'Store' -benchtime 3x .

bench-alloc:
	GODEBUG=gctrace=1 $(GO) test -run '^$$' -bench 'RefRepresentation/churn' -benchmem -benchtime 200000x .
	GODEBUG=gctrace=1 $(GO) test -run '^$$' -bench 'RefRepresentation/trial' -benchmem -benchtime 3x .

bench-reclaim:
	$(GO) test -run '^$$' -bench 'Reclaim/(turnover|revive)' -benchmem -benchtime 200000x .
	$(GO) test -run '^$$' -bench 'Reclaim/(snapshot|rangescan)' -benchtime 10000x .

bench-json:
	$(GO) run ./cmd/sgbench -suite -threads 16 -duration 500ms -runs 2 -json $(BENCHJSON)

bench-persist:
	rm -rf $(PERSISTDIR)
	$(GO) run ./cmd/sgbench -dump $(PERSISTDIR) -load $(PERSISTDIR) -keyspace $(PERSISTKEYS) -threads 16

bench-wal:
	$(GO) test -run '^$$' -bench 'WAL(Append|Commit)' -benchtime 20000x ./internal/persist
	for pol in never interval every group; do \
		rm -rf $(PERSISTDIR)-wal; \
		$(GO) run ./cmd/sgbench -dump $(PERSISTDIR)-wal/d -wal $(PERSISTDIR)-wal/w -wal-sync $$pol -keyspace $(WALKEYS) -threads 16 | grep -E 'fill|wal sync'; \
	done

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSkipGraphOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzStoreOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzMaintainOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzRefRepresentations$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshotOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzIndexOps$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDumpLoad$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzWALSync$$' -fuzztime $(FUZZTIME) ./internal/persist

fmt:
	gofmt -l .
