// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each BenchmarkFig*/Table*
// iteration runs one Synchrobench-style trial and reports the figure's
// metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full evaluation at test scale, and
//
//	go test -bench=Fig2 -benchtime=5x
//
// re-runs one figure with more repetitions. Paper-scale parameters (96
// threads, 10 s trials, 5 runs) are available through cmd/experiments; the
// benchmarks use reduced thread counts and durations so the suite completes
// quickly while preserving each comparison's *shape* (who wins and by
// roughly what factor) — see EXPERIMENTS.md for shape-vs-paper notes.
package layeredsg

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"layeredsg/internal/cachesim"
	"layeredsg/internal/experiments"
	"layeredsg/internal/numa"
	"layeredsg/internal/sbench"
	"layeredsg/internal/stats"
)

const (
	benchThreads  = 16
	benchDuration = 100 * time.Millisecond
)

// benchMachine scales the paper machine down so `threads` workers span both
// sockets (socket-fill pinning on the full 2×24×2 box would leave any run
// below 49 threads entirely on socket 0, hiding every NUMA effect — in the
// paper, too, the curves only separate beyond one socket's worth of
// threads). cmd/experiments at 96 threads uses the full paper machine.
func benchMachine(b *testing.B, threads int) *numa.Machine {
	b.Helper()
	cores := threads / 4
	if cores < 1 {
		cores = 1
	}
	topo, err := numa.New(2, cores, 2)
	if err != nil {
		b.Fatal(err)
	}
	machine, err := numa.Pin(topo, threads)
	if err != nil {
		b.Fatal(err)
	}
	return machine
}

func benchWorkload(sc experiments.Scenario, load experiments.Load) sbench.Workload {
	return sbench.Workload{
		KeySpace:        sc.KeySpace,
		UpdateRatio:     load.UpdateRatio,
		Duration:        benchDuration,
		PreloadFraction: sc.PreloadFraction,
		Seed:            42,
		YieldEvery:      1,
	}
}

// benchThroughput is the engine behind the Fig. 2–4 and 11–13 benchmarks.
func benchThroughput(b *testing.B, sc experiments.Scenario, load experiments.Load) {
	machine := benchMachine(b, benchThreads)
	for _, algo := range experiments.ThroughputAlgos {
		b.Run(algo, func(b *testing.B) {
			var opsPerMs float64
			for i := 0; i < b.N; i++ {
				// Throughput trials run with the NUMA latency model attached
				// so remote accesses cost wall-clock time, as on the paper's
				// machine (see stats.LatencyModel).
				rec := stats.NewRecorder(machine, nil)
				rec.SetLatency(stats.DefaultLatencyModel())
				a, err := NewAdapter(algo, machine, AdapterOptions{KeySpace: sc.KeySpace, Recorder: rec, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sbench.Trial(machine, a, benchWorkload(sc, load))
				a.Close()
				if err != nil {
					b.Fatal(err)
				}
				opsPerMs += res.OpsPerMs
			}
			b.ReportMetric(opsPerMs/float64(b.N), "ops/ms")
		})
	}
}

// BenchmarkFig2_HC_WH regenerates Fig. 2: write-heavy throughput at high
// contention (2^8 keys).
func BenchmarkFig2_HC_WH(b *testing.B) { benchThroughput(b, experiments.HC, experiments.WH) }

// BenchmarkFig3_MC_WH regenerates Fig. 3: write-heavy, medium contention
// (2^14 keys).
func BenchmarkFig3_MC_WH(b *testing.B) { benchThroughput(b, experiments.MC, experiments.WH) }

// BenchmarkFig4_LC_WH regenerates Fig. 4: write-heavy, low contention
// (2^17 keys, 2.5 % preload).
func BenchmarkFig4_LC_WH(b *testing.B) { benchThroughput(b, experiments.LC, experiments.WH) }

// BenchmarkFig11_HC_RH regenerates Fig. 11: read-heavy, high contention.
func BenchmarkFig11_HC_RH(b *testing.B) { benchThroughput(b, experiments.HC, experiments.RH) }

// BenchmarkFig12_MC_RH regenerates Fig. 12: read-heavy, medium contention.
func BenchmarkFig12_MC_RH(b *testing.B) { benchThroughput(b, experiments.MC, experiments.RH) }

// BenchmarkFig13_LC_RH regenerates Fig. 13: read-heavy, low contention.
func BenchmarkFig13_LC_RH(b *testing.B) { benchThroughput(b, experiments.LC, experiments.RH) }

// instrumentedBench runs one recorded trial per iteration and lets report
// publish metrics from the recorder.
func instrumentedBench(b *testing.B, algo string, sc experiments.Scenario, load experiments.Load, sink stats.AccessSink, report func(*testing.B, *stats.Recorder)) {
	machine := benchMachine(b, benchThreads)
	for i := 0; i < b.N; i++ {
		rec := stats.NewRecorder(machine, sink)
		rec.SetLatency(stats.DefaultLatencyModel())
		a, err := NewAdapter(algo, machine, AdapterOptions{KeySpace: sc.KeySpace, Recorder: rec, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		_, err = sbench.Trial(machine, a, benchWorkload(sc, load))
		a.Close()
		if err != nil {
			b.Fatal(err)
		}
		report(b, rec)
	}
}

// BenchmarkFig5_NodesPerSearch regenerates Fig. 5: average shared nodes
// traversed per search, MC-WH.
func BenchmarkFig5_NodesPerSearch(b *testing.B) {
	for _, algo := range experiments.Fig5Algos {
		b.Run(algo, func(b *testing.B) {
			instrumentedBench(b, algo, experiments.MC, experiments.WH, nil,
				func(b *testing.B, rec *stats.Recorder) {
					b.ReportMetric(rec.Summary().NodesPerSearch, "nodes/search")
				})
		})
	}
}

// BenchmarkTable1_Instrumentation regenerates Table 1: local/remote reads
// and maintenance CAS per operation plus CAS success rate, HC-WH.
func BenchmarkTable1_Instrumentation(b *testing.B) {
	for _, algo := range experiments.Table1Algos {
		b.Run(algo, func(b *testing.B) {
			instrumentedBench(b, algo, experiments.HC, experiments.WH, nil,
				func(b *testing.B, rec *stats.Recorder) {
					s := rec.Summary()
					b.ReportMetric(s.LocalReadsPerOp, "localReads/op")
					b.ReportMetric(s.RemoteReadsPerOp, "remoteReads/op")
					b.ReportMetric(s.LocalCASPerOp, "localCAS/op")
					b.ReportMetric(s.RemoteCASPerOp, "remoteCAS/op")
					b.ReportMetric(s.CASSuccessRate, "CASsuccess")
				})
		})
	}
}

// BenchmarkFig6to9_CASLocality regenerates the essence of the CAS heatmaps
// (Figs. 6–9): the fraction of maintenance CASes that stay NUMA-local, and
// the per-pair traffic at the largest NUMA distance, MC-WH.
func BenchmarkFig6to9_CASLocality(b *testing.B) {
	for _, algo := range experiments.HeatmapAlgos {
		b.Run(algo, func(b *testing.B) {
			instrumentedBench(b, algo, experiments.MC, experiments.WH, nil,
				func(b *testing.B, rec *stats.Recorder) {
					s := rec.Summary()
					if den := s.LocalCASPerOp + s.RemoteCASPerOp; den > 0 {
						b.ReportMetric(100*s.LocalCASPerOp/den, "localCAS%")
					}
					byDist := rec.LocalityByDistance(rec.CASHeatmap())
					b.ReportMetric(byDist[21], "remotePairCAS")
				})
		})
	}
}

// BenchmarkFig14to17_ReadLocality regenerates the read heatmaps' essence
// (Figs. 14–17): NUMA-local read fraction, MC-WH.
func BenchmarkFig14to17_ReadLocality(b *testing.B) {
	for _, algo := range experiments.HeatmapAlgos {
		b.Run(algo, func(b *testing.B) {
			instrumentedBench(b, algo, experiments.MC, experiments.WH, nil,
				func(b *testing.B, rec *stats.Recorder) {
					s := rec.Summary()
					if den := s.LocalReadsPerOp + s.RemoteReadsPerOp; den > 0 {
						b.ReportMetric(100*s.LocalReadsPerOp/den, "localReads%")
					}
				})
		})
	}
}

// BenchmarkTable2_CacheMisses regenerates Table 2: modelled L1/L2/L3 misses
// per operation, HC-WH, at the paper's 8/16/32 thread counts.
func BenchmarkTable2_CacheMisses(b *testing.B) {
	for _, threads := range []int{8, 16, 32} {
		for _, algo := range experiments.Table2Algos {
			b.Run(fmt.Sprintf("%s/threads=%d", algo, threads), func(b *testing.B) {
				machine := benchMachine(b, threads)
				for i := 0; i < b.N; i++ {
					sim := cachesim.New(machine, cachesim.Config{})
					rec := stats.NewRecorder(machine, sim)
					rec.SetLatency(stats.DefaultLatencyModel())
					a, err := NewAdapter(algo, machine, AdapterOptions{KeySpace: experiments.HC.KeySpace, Recorder: rec, Seed: int64(i)})
					if err != nil {
						b.Fatal(err)
					}
					_, err = sbench.Trial(machine, a, benchWorkload(experiments.HC, experiments.WH))
					a.Close()
					if err != nil {
						b.Fatal(err)
					}
					l1, l2, l3 := sim.Misses().PerOp(rec.Summary().Ops)
					b.ReportMetric(l1, "L1miss/op")
					b.ReportMetric(l2, "L2miss/op")
					b.ReportMetric(l3, "L3miss/op")
				}
			})
		}
	}
}

// BenchmarkMaintainOverhead compares the lazy layered map's maintenance
// policies — the paper's inline protocol vs. the background helper pool vs.
// hybrid — on the write-heavy high- and low-contention scenarios, reporting
// both throughput and sampled p99 operation latency. The interesting number
// is the tail: background maintenance moves finishInsert/retire/relink work
// off the critical path, so p99 should drop (or hold) while throughput stays
// within noise of inline.
func BenchmarkMaintainOverhead(b *testing.B) {
	scenarios := []struct {
		name string
		sc   experiments.Scenario
	}{
		{"HC_WH", experiments.HC},
		{"LC_WH", experiments.LC},
	}
	policies := []struct {
		name   string
		policy MaintenancePolicy
	}{
		{"inline", MaintInline},
		{"background", MaintBackground},
		{"hybrid", MaintHybrid},
	}
	machine := benchMachine(b, benchThreads)
	for _, sc := range scenarios {
		for _, p := range policies {
			b.Run(sc.name+"/"+p.name, func(b *testing.B) {
				var opsPerMs, p99 float64
				for i := 0; i < b.N; i++ {
					a, err := NewAdapter("lazy_layered_sg", machine, AdapterOptions{
						KeySpace:    sc.sc.KeySpace,
						Maintenance: p.policy,
						Seed:        int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					w := benchWorkload(sc.sc, experiments.WH)
					w.LatencySample = 64
					res, err := sbench.Trial(machine, a, w)
					a.Close()
					if err != nil {
						b.Fatal(err)
					}
					opsPerMs += res.OpsPerMs
					p99 += float64(res.Latency.P99Ns)
				}
				b.ReportMetric(opsPerMs/float64(b.N), "ops/ms")
				b.ReportMetric(p99/float64(b.N), "p99ns")
			})
		}
	}
}

// BenchmarkRefRepresentation compares the two node representations — arena-
// backed packed level references vs pointer-to-cell references — on the
// insert/remove hot path. Run with -benchmem: the headline number is
// allocs/op (the packed representation's link mutations are allocation-free,
// so its remaining allocations are amortized arena chunks), alongside ns/op
// and the GC stop-the-world pause accumulated per operation. The concurrent
// sub-benchmarks report trial throughput; `make bench-alloc` adds
// GODEBUG=gctrace=1 for raw GC logs. Results in EXPERIMENTS.md.
func BenchmarkRefRepresentation(b *testing.B) {
	modes := []struct {
		name string
		refs RefMode
	}{
		{"packed", RefPacked},
		{"cells", RefCells},
	}
	// Single-handle churn: alternating insert/remove over a small key window,
	// the paper's update hot path minus workload-generator noise.
	for _, kind := range []Kind{LayeredSG, LazyLayeredSG} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("churn/%s/%s", kind, mode.name), func(b *testing.B) {
				machine := benchMachine(b, 4)
				m, err := New[int64, int64](Config{Machine: machine, Kind: kind, Refs: mode.refs, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				h := m.Handle(0)
				for k := int64(0); k < 1024; k++ {
					h.Insert(k, k)
				}
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				b.ReportAllocs()
				b.ResetTimer()
				// Each iteration is one guaranteed-successful remove+insert
				// pair on a preloaded key (failed ops mutate no links and
				// would dilute allocs/op with zeros).
				for i := 0; i < b.N; i++ {
					k := int64(i*2654435761) % 1024
					h.Remove(k)
					h.Insert(k, k)
				}
				b.StopTimer()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				b.ReportMetric(float64(after.PauseTotalNs-before.PauseTotalNs)/float64(b.N), "gcPauseNs/op")
			})
		}
	}
	// Concurrent write-heavy trials: representation impact on throughput.
	machine := benchMachine(b, benchThreads)
	for _, mode := range modes {
		b.Run("trial/HC_WH/"+mode.name, func(b *testing.B) {
			var opsPerMs float64
			for i := 0; i < b.N; i++ {
				a, err := NewAdapter("lazy_layered_sg", machine, AdapterOptions{
					KeySpace: experiments.HC.KeySpace,
					Refs:     mode.refs,
					Seed:     int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sbench.Trial(machine, a, benchWorkload(experiments.HC, experiments.WH))
				a.Close()
				if err != nil {
					b.Fatal(err)
				}
				opsPerMs += res.OpsPerMs
			}
			b.ReportMetric(opsPerMs/float64(b.N), "ops/ms")
		})
	}
}

// BenchmarkIndexOverhead measures the shared hash index (internal/hindex,
// DESIGN.md §9) on its target workload: point reads of keys *other stripes*
// inserted. The local structures cannot serve those — without the index every
// such Get pays a descent from the head tower, the exact cross-stripe traffic
// the layered design otherwise leaves on the table. Each sub-benchmark runs a
// 90/10 Get/Insert mix from one handle over a structure preloaded round-robin
// across all 16 stripes, with the index on (IndexAuto) and off (IndexOff);
// the ratio of the two ns/op figures is the step function recorded in
// EXPERIMENTS.md.
func BenchmarkIndexOverhead(b *testing.B) {
	const keys = 4096
	for _, kind := range []Kind{LazyLayeredSG, LayeredSG} {
		for _, mode := range []struct {
			name string
			idx  IndexMode
		}{
			{"indexed", IndexAuto},
			{"indexoff", IndexOff},
		} {
			b.Run(fmt.Sprintf("%s/%s", kind, mode.name), func(b *testing.B) {
				machine := benchMachine(b, benchThreads)
				m, err := New[int64, int64](Config{Machine: machine, Kind: kind, Index: mode.idx, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				// Preload round-robin across every stripe except the measuring
				// one: stripe 0 owns none of the read set, so its local
				// structures can neither hit nor jump — the cross-stripe
				// situation the index exists for. (Preloading stripe 0 too
				// would hand the baseline the paper's local jump and measure
				// nothing.)
				for k := int64(0); k < keys; k++ {
					m.Handle(1+int(k)%(benchThreads-1)).Insert(k, k)
				}
				h := m.Handle(0)
				fresh := int64(keys)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%10 == 9 {
						h.Insert(fresh, fresh)
						fresh++
						continue
					}
					k := int64(i*2654435761) % keys
					if _, ok := h.Get(k); !ok {
						b.Fatalf("preloaded key %d missing", k)
					}
				}
			})
		}
	}
}

// BenchmarkOps measures raw single-threaded operation latency per algorithm
// on a preloaded MC-sized structure — the ns/op ground truth under the
// throughput figures.
func BenchmarkOps(b *testing.B) {
	for _, algo := range Algorithms() {
		b.Run(algo, func(b *testing.B) {
			machine := benchMachine(b, 4)
			a, err := NewAdapter(algo, machine, AdapterOptions{KeySpace: experiments.MC.KeySpace, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			if err := sbench.Preload(machine, a, benchWorkload(experiments.MC, experiments.WH)); err != nil {
				b.Fatal(err)
			}
			h := a.Handle(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i*2654435761) % experiments.MC.KeySpace
				switch i % 4 {
				case 0:
					h.Insert(k, k)
				case 1:
					h.Remove(k)
				default:
					h.Contains(k)
				}
			}
		})
	}
}

// BenchmarkPQueue regenerates the appendix's preliminary priority-queue
// numbers: push/popMin throughput over the layered structure, for the exact
// queue and the SprayList-style relaxed extension. Under contention the
// relaxed pop spreads consumers over near-minimal nodes instead of making
// them fight over the head.
func BenchmarkPQueue(b *testing.B) {
	machine := benchMachine(b, 8)
	pops := map[string]func(h *Handle[int64, int64]) bool{
		"exact": func(h *Handle[int64, int64]) bool {
			_, _, ok := h.RemoveMin()
			return ok
		},
		"relaxed": func(h *Handle[int64, int64]) bool {
			_, _, ok := h.RemoveMinRelaxed(2)
			return ok
		},
	}
	for _, name := range []string{"exact", "relaxed"} {
		pop := pops[name]
		b.Run(name, func(b *testing.B) {
			const n = 5000
			for i := 0; i < b.N; i++ {
				q, err := New[int64, int64](Config{Machine: machine, Kind: LazyLayeredSG, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				h := q.Handle(0)
				for k := int64(0); k < n; k++ {
					h.Insert(k*7919%100003, k)
				}
				for pop(h) {
				}
			}
			b.ReportMetric(float64(b.N*n)/float64(b.Elapsed().Milliseconds()+1), "pushpop/ms")
		})
	}
}

// BenchmarkReclaim measures the epoch-based slot-reclamation pipeline on the
// update hot path and the MVCC read surface it enables. The churn pair runs
// the same remove+insert workload with reclamation on and off (same engine,
// same flush cadence): ns/op between the two is the pipeline's hot-path toll
// (stamp sequencer + epoch pins + limbo hand-off; see EXPERIMENTS.md for the
// measured deltas against the packed-representation churn numbers of
// BenchmarkRefRepresentation), while slotsCarved/slotsLive
// show the capacity story: with reclamation on, carved slots plateau near
// the working set instead of tracking total allocations. The snapshot
// sub-benchmarks price acquisition and the consistent-vs-weak RangeScan.
// Results in EXPERIMENTS.md; `make bench-reclaim` runs the suite.
func BenchmarkReclaim(b *testing.B) {
	newChurnMap := func(b *testing.B, reclaim ReclaimMode) (*Map[int64, int64], func() int64) {
		var now atomic.Int64
		clock := func() int64 { return now.Add(50) }
		m, err := New[int64, int64](Config{
			Machine:          benchMachine(b, 4),
			Kind:             LazyLayeredSG,
			Seed:             1,
			Maintenance:      MaintBackground,
			Reclaim:          reclaim,
			CommissionPeriod: 500,
			Clock:            clock,
		})
		if err != nil {
			b.Fatal(err)
		}
		return m, clock
	}
	for _, mode := range []struct {
		name    string
		reclaim ReclaimMode
	}{
		{"reclaim", ReclaimAuto},
		{"noreclaim", ReclaimOff},
	} {
		// turnover: a moving 1024-key window — every iteration inserts a
		// fresh key and removes the eldest, which is never re-inserted, so
		// each removal ages past its commission period and retires. This is
		// the workload where the slot pipeline earns its keep: slotsCarved
		// plateaus with reclamation on and tracks b.N with it off.
		b.Run("turnover/"+mode.name, func(b *testing.B) {
			m, _ := newChurnMap(b, mode.reclaim)
			defer m.Close()
			h := m.Handle(0)
			for k := int64(0); k < 1024; k++ {
				h.Insert(k, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Insert(int64(1024+i), int64(i))
				h.Remove(int64(i))
				// Stands in for helper park cycles at benchmark speed. The
				// cadence stays under the retire-queue capacity: removals
				// enqueue deferred retires during their commission period,
				// and a flush interval larger than the queue drops the
				// excess on the floor (the lazy protocol then only finds
				// those nodes again if a later search stumbles over them,
				// which a one-way key window never does).
				if i&255 == 255 {
					m.Maintenance().Flush()
				}
			}
			b.StopTimer()
			for i := 0; i < 64 && m.Maintenance().LimboDepth() > 0; i++ {
				m.Maintenance().Flush()
			}
			st := m.SharedStructure().ArenaStats()
			b.ReportMetric(float64(st.SlotsUsed), "slotsCarved")
			b.ReportMetric(float64(st.SlotsLive()), "slotsLive")
			b.ReportMetric(float64(st.SlotsReclaimed)/float64(b.N), "reclaimed/op")
		})
		// revive: PR 5's packed-churn shape — remove+insert of the same
		// preloaded key, which the lazy protocol resolves as an in-place
		// revival. No slots turn over; the ns/op delta against
		// BenchmarkRefRepresentation/churn is the MVCC machinery's hot-path
		// toll (epoch pins plus born/dead stamping).
		b.Run("revive/"+mode.name, func(b *testing.B) {
			m, _ := newChurnMap(b, mode.reclaim)
			defer m.Close()
			h := m.Handle(0)
			for k := int64(0); k < 1024; k++ {
				h.Insert(k, k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i*2654435761) % 1024
				h.Remove(k)
				h.Insert(k, k)
			}
		})
	}
	b.Run("snapshot/acquire", func(b *testing.B) {
		m, _ := newChurnMap(b, ReclaimAuto)
		defer m.Close()
		h := m.Handle(0)
		for k := int64(0); k < 1024; k++ {
			h.Insert(k, k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := m.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})
	for _, mode := range []struct {
		name    string
		reclaim ReclaimMode
	}{
		{"consistent", ReclaimAuto}, // snapshot-backed RangeScan
		{"weak", ReclaimOff},        // per-key lease fallback
	} {
		b.Run("rangescan/"+mode.name, func(b *testing.B) {
			var now atomic.Int64
			st, err := NewStore[int64, int64](Config{
				Machine:          benchMachine(b, 4),
				Kind:             LazyLayeredSG,
				Seed:             1,
				Maintenance:      MaintBackground,
				Reclaim:          mode.reclaim,
				CommissionPeriod: 500,
				Clock:            func() int64 { return now.Add(50) },
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			for k := int64(0); k < 1024; k++ {
				st.Insert(k, k)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				st.RangeScan(0, 1023, func(int64, int64) bool {
					n++
					return true
				})
				if n == 0 {
					b.Fatal("empty scan")
				}
			}
		})
	}
}
